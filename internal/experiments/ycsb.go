package experiments

import (
	"encoding/binary"
	"fmt"

	"rambda/internal/core"
	"rambda/internal/kvs"
	"rambda/internal/lsm"
	"rambda/internal/obs"
	"rambda/internal/runner"
	"rambda/internal/sim"
)

// The ycsb experiment is not a paper figure: it opens the scan-heavy
// and mixed-workload scenario family the paper never measured against
// its µs-scale latency bar. YCSB-style mixes A (50/50 read/update), B
// (95/5), C (read-only), and E (95% range scans / 5% inserts) drive the
// RAMBDA serving path over both storage backends behind the kvs.Backend
// API — the MICA-style hash index and the tiered DRAM-memtable →
// NVM-sstable LSM tree — reporting goodput, p50/p99, and the LSM's
// flush/compaction/stall counters so compaction pressure is visible
// next to the latency it causes.

// YCSBConfig sizes the workload-mix × backend sweep.
type YCSBConfig struct {
	// Keys is the preloaded key universe; ValueBytes the payload per
	// pair; ScanLen the pair budget of one OpScan.
	Keys       int
	ValueBytes int
	ScanLen    int

	Connections int
	Batch       int
	Requests    int
	ZipfTheta   float64
	Seed        uint64
	Parallel    int // sweep-point workers; 0 = runner default

	// MetricsOut, when non-empty, exports every point's backend metrics
	// registry (memtable/run gauges, flush/compaction/stall counters,
	// hash hit rates) as one JSON file after the jobs have run. Same
	// seed, same file, byte for byte.
	MetricsOut string
}

// DefaultYCSBConfig returns the full-size sweep.
func DefaultYCSBConfig() YCSBConfig {
	return YCSBConfig{
		Keys:        1 << 16,
		ValueBytes:  46,
		ScanLen:     16,
		Connections: 10,
		Batch:       32,
		Requests:    24000,
		ZipfTheta:   0.99,
		Seed:        31,
	}
}

// ycsbWindow is the per-connection pipeline depth: moderate load, so
// path latency and compaction interference, not closed-loop
// equilibrium, dominate the tail.
const ycsbWindow = 8

// ycsbMix is one workload row: percentages must sum to 100.
type ycsbMix struct {
	name    string
	readPct int
	upPct   int
	scanPct int // remainder after scans is inserts (workload E)
}

// ycsbMixes enumerates the YCSB-style rows in table order.
var ycsbMixes = []ycsbMix{
	{"A", 50, 50, 0},
	{"B", 95, 5, 0},
	{"C", 100, 0, 0},
	{"E", 0, 0, 95},
}

// ycsbBackends enumerates the storage engines in table order.
var ycsbBackends = []string{"hash", "lsm"}

// ycsbLSMConfig sizes the tree so the sweep exercises real flush and
// compaction cascades within a run: the WAL is slightly smaller than
// the memtable, so sustained updates wrap it and force synchronous
// (stalling) flushes — the write-stall pressure the E/A rows exist to
// measure — and L0 bounds at 2 runs so compactions cascade.
func ycsbLSMConfig() lsm.Config {
	return lsm.Config{
		MemtableBytes: 64 << 10,
		L0Runs:        2,
		SSTableBytes:  2 << 20,
		WALBytes:      48 << 10,
		MaxLevels:     4,
	}
}

// ycsbServer is one serving system: the RAMBDA machine pair with the
// chosen backend behind the wire protocol. db is nil for the hash
// backend; when set, the handler drains the tree's background work
// after every request (charging compaction to the NVM channels) and
// stalls the request on WAL-wrap flushes.
type ycsbServer struct {
	clients []*core.Client
	n       int
	store   *kvs.Store
	db      *lsm.DB

	// base is the LSM's counter state right after preload, so rows
	// report run-only flush/compaction/stall deltas.
	base lsm.Stats

	sc      kvs.Scratch
	reqBuf  []byte
	respBuf []byte
	// cliPairs is the client-side scan decode scratch.
	cliPairs []kvs.ScanPair
}

// newYCSBServer builds a fresh system for one sweep point. reg nil is
// the uninstrumented fast path.
func newYCSBServer(cfg YCSBConfig, backend string, reg *obs.Registry) *ycsbServer {
	sm := core.NewMachine(core.MachineConfig{Name: "srv", Variant: core.AccelBase, WithNVM: true})
	cm := core.NewMachine(core.MachineConfig{Name: "cli"})
	core.ConnectMachines(sm, cm)
	s := &ycsbServer{n: cfg.Connections}

	var be kvs.Backend
	val := make([]byte, cfg.ValueBytes)
	var key []byte
	switch backend {
	case "hash":
		// Pool sized for the preload plus workload-E inserts.
		s.store = kvs.New(sm.Space, kvs.Config{
			Buckets:   cfg.Keys / 4,
			PoolBytes: uint64(cfg.Keys+cfg.Requests) * 160,
			Kind:      sm.DataKind(),
		})
		var trace []kvs.Access
		for i := 0; i < cfg.Keys; i++ {
			binary.LittleEndian.PutUint64(val, uint64(i))
			key = appendKVSKey(key[:0], i)
			t, err := s.store.PutInto(trace[:0], key, val)
			if err != nil {
				panic(err)
			}
			trace = t
		}
		if reg != nil {
			s.store.RegisterMetrics(reg, "ycsb.hash")
		}
		be = s.store
	case "lsm":
		s.db = lsm.Open(sm.Space, sm.Mem, ycsbLSMConfig())
		var trace []kvs.Access
		for i := 0; i < cfg.Keys; i++ {
			binary.LittleEndian.PutUint64(val, uint64(i))
			key = appendKVSKey(key[:0], i)
			t, err := s.db.PutInto(trace[:0], key, val)
			if err != nil {
				panic(err)
			}
			trace = t
		}
		s.db.Maintain(0) // preload flushes are free; measurement starts clean
		s.base = s.db.Stats()
		if reg != nil {
			s.db.RegisterMetrics(reg, "ycsb.lsm")
		}
		be = s.db
	default:
		panic("ycsb: unknown backend " + backend)
	}

	app := core.AppFunc(func(ctx *core.AppCtx, now sim.Time, reqBytes []byte) ([]byte, sim.Time) {
		req, err := kvs.DecodeRequest(reqBytes)
		if err != nil {
			panic(err)
		}
		t := ctx.Compute(now, kvsAPUCycles)
		resp, trace := kvs.ApplyScratch(be, req, &s.sc)
		for _, a := range trace {
			if a.Write {
				t = ctx.Write(t, a.Addr, zeros(a.Bytes))
			} else {
				t = ctx.Read(t, a.Addr, a.Bytes)
			}
		}
		if s.db != nil {
			// Background flush/compaction streams into NVM from t on;
			// a WAL-wrap flush stalls this request until durable.
			end, stalled := s.db.Maintain(t)
			if stalled {
				t = end
			}
		}
		if req.Op == kvs.OpScan {
			s.respBuf = kvs.AppendScanResponse(s.respBuf[:0], resp.Status, s.sc.ScanBuf, s.sc.ScanPairs)
		} else {
			s.respBuf = kvs.AppendResponse(s.respBuf[:0], resp)
		}
		return s.respBuf, t
	})

	opts := core.DefaultServerOptions()
	opts.Connections = cfg.Connections
	opts.RingEntries = cfg.Batch * 4
	// Scan responses carry up to ScanLen pairs; size ring entries for
	// the largest frame.
	opts.EntryBytes = 128 + cfg.ScanLen*(6+18+cfg.ValueBytes)
	opts.ResponseBatch = cfg.Batch
	s2 := core.NewServer(sm, app, opts)
	for i := 0; i < cfg.Connections; i++ {
		s.clients = append(s.clients, core.ConnectClient(cm, s2, i))
	}
	return s
}

// callOn routes to a specific connection, decoding by request shape.
func (s *ycsbServer) callOn(id int, now sim.Time, req kvs.Request) sim.Time {
	s.reqBuf = kvs.AppendRequest(s.reqBuf[:0], req)
	respB, done := s.clients[id%s.n].Call(now, s.reqBuf)
	if req.Op == kvs.OpScan {
		status, _, pairs, err := kvs.DecodeScanResponse(respB, s.cliPairs[:0])
		s.cliPairs = pairs
		if err != nil || status == kvs.StatusError {
			panic(fmt.Sprintf("ycsb: scan response status=%d err=%v", status, err))
		}
		return done
	}
	resp, err := kvs.DecodeResponse(respB)
	if err != nil || resp.Status == kvs.StatusError {
		panic(fmt.Sprintf("ycsb: response status=%d err=%v", resp.Status, err))
	}
	return done
}

// ycsbWork is one pipelined request slot (generator buffers are copied
// in, so a slot stays valid for the request that consumes it).
type ycsbWork struct {
	op      kvs.Op
	key     []byte
	val     []byte
	limit   int
	reverse bool
}

// measureYCSB drives one (mix, backend) point through the closed loop.
// The request stream is generated in index order through a sim.Pipeline
// so output is byte-identical at any -sim-parallel.
func measureYCSB(cfg YCSBConfig, srv *ycsbServer, mix ycsbMix, seed uint64) *sim.Result {
	rng := sim.NewRNG(runner.SubSeed(seed, 1))
	zipf := sim.NewZipf(rng, uint64(cfg.Keys), cfg.ZipfTheta)
	insertNext := cfg.Keys
	valBase := make([]byte, cfg.ValueBytes)

	total := cfg.Connections * ycsbWindow
	perClient := cfg.Requests / total
	if perClient < 1 {
		perClient = 1
	}
	stream := sim.NewPipeline(total*perClient, 64, 16, func(_ int, wk *ycsbWork) {
		p := rng.Intn(100)
		switch {
		case p < mix.readPct:
			wk.op = kvs.OpGet
			wk.key = appendKVSKey(wk.key[:0], int(zipf.Next()))
		case p < mix.readPct+mix.upPct:
			wk.op = kvs.OpPut
			k := int(zipf.Next())
			wk.key = appendKVSKey(wk.key[:0], k)
			binary.LittleEndian.PutUint64(valBase, uint64(k))
			wk.val = append(wk.val[:0], valBase...)
		case p < mix.readPct+mix.upPct+mix.scanPct:
			wk.op = kvs.OpScan
			wk.key = appendKVSKey(wk.key[:0], int(zipf.Next()))
			wk.limit = cfg.ScanLen
			wk.reverse = rng.Intn(4) == 0
		default: // workload E's inserts grow the keyspace
			wk.op = kvs.OpPut
			k := insertNext
			insertNext++
			wk.key = appendKVSKey(wk.key[:0], k)
			binary.LittleEndian.PutUint64(valBase, uint64(k))
			wk.val = append(wk.val[:0], valBase...)
		}
	})
	defer stream.Close()
	return sim.ClosedLoop{
		Clients: total, PerClient: perClient, Warmup: 2,
		Stagger: 40 * sim.Nanosecond, Jitter: 400 * sim.Nanosecond, JitterSeed: seed,
	}.Run(func(id int, issue sim.Time) sim.Time {
		wk := stream.Next()
		req := kvs.Request{Op: wk.op, Key: wk.key}
		switch wk.op {
		case kvs.OpPut:
			req.Val = wk.val
		case kvs.OpScan:
			req.ScanLimit = wk.limit
			req.Reverse = wk.reverse
		}
		return srv.callOn(id, issue, req)
	})
}

// YCSBRow is one (workload, backend) point.
type YCSBRow struct {
	Workload string
	Backend  string
	Goodput  float64
	P50, P99 sim.Time
	// LSM health over the measured run (preload excluded; zero for
	// hash).
	Flushes, Compactions, Stalls int64
}

// ycsbPoint runs one sweep point on a fresh system.
func ycsbPoint(cfg YCSBConfig, mix ycsbMix, backend string, point int, reg *obs.Registry) YCSBRow {
	seed := runner.Seed("ycsb", point)
	srv := newYCSBServer(cfg, backend, reg)
	res := measureYCSB(cfg, srv, mix, seed)
	row := YCSBRow{
		Workload: mix.name,
		Backend:  backend,
		Goodput:  res.Throughput,
		P50:      res.Latency.P50(),
		P99:      res.Latency.P99(),
	}
	if srv.db != nil {
		st := srv.db.Stats()
		row.Flushes = st.Flushes - srv.base.Flushes
		row.Compactions = st.Compactions - srv.base.Compactions
		row.Stalls = st.Stalls - srv.base.Stalls
	}
	if reg != nil {
		reg.SnapshotNow(res.End)
	}
	return row
}

// ycsbPlan enumerates (mix × backend) as runner jobs. Registries are
// slot-indexed like the rows, so the export is identical for every
// worker count.
func ycsbPlan(cfg YCSBConfig) (func() *Table, []runner.Job) {
	type point struct {
		mix     ycsbMix
		backend string
	}
	var points []point
	for _, m := range ycsbMixes {
		for _, b := range ycsbBackends {
			points = append(points, point{m, b})
		}
	}
	rows := make([]YCSBRow, len(points))
	var regs []*obs.Registry
	if cfg.MetricsOut != "" {
		regs = make([]*obs.Registry, len(points))
	}
	jobs := runner.Jobs("ycsb", len(points),
		func(i int) string { return points[i].mix.name + "/" + points[i].backend },
		func(i int) {
			var reg *obs.Registry
			if regs != nil {
				regs[i] = obs.NewRegistry()
				reg = regs[i]
			}
			rows[i] = ycsbPoint(cfg, points[i].mix, points[i].backend, i, reg)
		})
	return func() *Table { return ycsbRender(cfg, rows, regs) }, jobs
}

func ycsbRender(cfg YCSBConfig, rows []YCSBRow, regs []*obs.Registry) *Table {
	t := &Table{
		ID:    "ycsb",
		Title: "YCSB-style mixes x storage backend (hash vs tiered LSM)",
		Columns: []string{"workload", "backend", "goodput", "p50", "p99",
			"flushes", "compactions", "stalls"},
		Notes: []string{
			"A=50/50 read/update, B=95/5, C=read-only, E=95% scans (limit 16) / 5% inserts",
			"lsm: flush+compaction charged to NVM write bandwidth after each request; stalls = WAL-wrap write stalls",
			"hash scans are bucket-order cursors (no key order); lsm scans are key-ordered merged iterators",
		},
	}
	na := func(backend string, v int64) string {
		if backend == "hash" {
			return "n/a"
		}
		return fmt.Sprintf("%d", v)
	}
	for _, r := range rows {
		t.AddRow(
			r.Workload, r.Backend,
			fmt.Sprintf("%.1f Kops", r.Goodput/1e3),
			usStr(r.P50), usStr(r.P99),
			na(r.Backend, r.Flushes), na(r.Backend, r.Compactions), na(r.Backend, r.Stalls),
		)
	}
	if cfg.MetricsOut != "" {
		mj := make([]obs.MetricsJSON, len(regs))
		for i, reg := range regs {
			mj[i] = obs.MetricsJSON{Name: rows[i].Workload + "/" + rows[i].Backend, Registry: reg}
		}
		if err := obs.WriteMetricsFile(cfg.MetricsOut, mj); err != nil {
			panic(fmt.Sprintf("ycsb: write metrics: %v", err))
		}
		// Constant note (no path): the rendered table must stay
		// byte-identical across runs that export to different files.
		t.Notes = append(t.Notes, "metrics exported (-ycsb-metrics-out)")
	}
	return t
}

// YCSBSpec exposes the sweep for a shared pool.
func YCSBSpec(cfg YCSBConfig) Spec {
	table, jobs := ycsbPlan(cfg)
	return Spec{ID: "ycsb", Jobs: jobs, Table: table}
}

// YCSBTable runs the whole sweep and renders it.
func YCSBTable(cfg YCSBConfig) *Table {
	return RunSpec(cfg.Parallel, YCSBSpec(cfg))
}
