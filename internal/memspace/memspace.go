// Package memspace implements the unified physical address space shared
// by the CPU, the RNIC, and the cc-accelerator in a RAMBDA machine
// (paper Sec. III: "a unified memory subsystem with both CPU-attached
// and accelerator-attached physical memory ... in the same address
// space and coherence domain").
//
// Regions carry real backing storage: the simulated RDMA verbs, ring
// buffers, KVS, transaction log, and DLRM tables all move actual bytes
// through this space, so functional correctness is testable
// independently of the timing model.
package memspace

import (
	"fmt"
	"sort"
)

// Addr is a physical address in the unified space.
type Addr uint64

// Kind classifies the device backing a region; the adaptive-DDIO logic
// (paper Sec. III-D) steers I/O by region kind.
type Kind int

const (
	// KindDRAM is CPU-attached DRAM.
	KindDRAM Kind = iota
	// KindNVM is CPU-attached non-volatile memory (Optane-like).
	KindNVM
	// KindAccelLocal is accelerator-attached memory (the RAMBDA-LD/LH
	// future-platform projection).
	KindAccelLocal
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindDRAM:
		return "dram"
	case KindNVM:
		return "nvm"
	case KindAccelLocal:
		return "accel-local"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Range is a half-open address interval [Base, Base+Size).
type Range struct {
	Base Addr
	Size uint64
}

// Contains reports whether addr falls inside the range.
func (r Range) Contains(addr Addr) bool {
	return addr >= r.Base && addr < r.Base+Addr(r.Size)
}

// Overlaps reports whether two ranges intersect.
func (r Range) Overlaps(o Range) bool {
	return r.Base < o.Base+Addr(o.Size) && o.Base < r.Base+Addr(r.Size)
}

// End returns the first address past the range.
func (r Range) End() Addr { return r.Base + Addr(r.Size) }

// Region is an allocated, backed interval of the address space.
type Region struct {
	Name string
	Kind Kind
	Range
	data []byte
}

// Bytes exposes the region's backing storage.
func (r *Region) Bytes() []byte { return r.data }

// Phantom reports whether the region is timing-only (no backing
// storage).
func (r *Region) Phantom() bool { return r.data == nil }

// Slice returns the backing bytes for [addr, addr+size) inside the
// region.
func (r *Region) Slice(addr Addr, size int) []byte {
	off := addr - r.Base
	if !r.Contains(addr) || uint64(off)+uint64(size) > r.Size {
		panic(fmt.Sprintf("memspace: [%#x,+%d) outside region %q [%#x,+%d)",
			addr, size, r.Name, r.Base, r.Size))
	}
	if r.data == nil {
		panic(fmt.Sprintf("memspace: byte access to phantom region %q", r.Name))
	}
	return r.data[off : uint64(off)+uint64(size)]
}

// Space is the machine's physical address space. The zero page
// (addresses below baseAddr) is never allocated so that Addr(0) can act
// as a null pointer in application data structures.
type Space struct {
	regions []*Region // sorted by Base
	next    Addr
}

const (
	baseAddr  Addr = 1 << 12
	alignment      = 64 // cacheline alignment for all regions
)

// New creates an empty address space.
func New() *Space {
	return &Space{next: baseAddr}
}

// Alloc reserves and backs a region of the given size and kind. Sizes
// are rounded up to cacheline alignment. It panics on a zero size —
// allocation failures here are programming errors, not runtime
// conditions.
func (s *Space) Alloc(name string, size uint64, kind Kind) *Region {
	return s.alloc(name, size, kind, true)
}

// AllocPhantom reserves a region with no backing storage: the address
// range and kind participate in Region/KindOf lookups — everything the
// timing models consult — but the bytes are never materialized. Use it
// for regions whose content no agent ever reads or writes, e.g. a DMA
// target whose steering depends only on the region kind (fig5's 1 GB
// working set). Byte access through Slice/Read/Write panics.
func (s *Space) AllocPhantom(name string, size uint64, kind Kind) *Region {
	return s.alloc(name, size, kind, false)
}

func (s *Space) alloc(name string, size uint64, kind Kind, backed bool) *Region {
	if size == 0 {
		panic("memspace: Alloc with zero size")
	}
	size = (size + alignment - 1) &^ uint64(alignment-1)
	r := &Region{
		Name:  name,
		Kind:  kind,
		Range: Range{Base: s.next, Size: size},
	}
	if backed {
		r.data = make([]byte, size)
	}
	s.regions = append(s.regions, r)
	s.next += Addr(size)
	return r
}

// Region finds the region containing addr, or nil.
func (s *Space) Region(addr Addr) *Region {
	i := sort.Search(len(s.regions), func(i int) bool {
		return s.regions[i].End() > addr
	})
	if i < len(s.regions) && s.regions[i].Contains(addr) {
		return s.regions[i]
	}
	return nil
}

// KindOf reports the kind of memory backing addr. It panics for
// unmapped addresses.
func (s *Space) KindOf(addr Addr) Kind {
	r := s.Region(addr)
	if r == nil {
		panic(fmt.Sprintf("memspace: KindOf unmapped address %#x", addr))
	}
	return r.Kind
}

// Read copies len(buf) bytes starting at addr into buf. The span must
// lie within a single region.
func (s *Space) Read(addr Addr, buf []byte) {
	copy(buf, s.mustSlice(addr, len(buf)))
}

// Write copies data into the space starting at addr. The span must lie
// within a single region.
func (s *Space) Write(addr Addr, data []byte) {
	copy(s.mustSlice(addr, len(data)), data)
}

// Slice returns the live backing bytes for [addr, addr+size); writes
// through the slice are visible to all agents (this is how the
// zero-copy ring buffers work).
func (s *Space) Slice(addr Addr, size int) []byte {
	return s.mustSlice(addr, size)
}

func (s *Space) mustSlice(addr Addr, size int) []byte {
	r := s.Region(addr)
	if r == nil {
		panic(fmt.Sprintf("memspace: access to unmapped address %#x", addr))
	}
	return r.Slice(addr, size)
}

// Regions returns all allocated regions in address order.
func (s *Space) Regions() []*Region {
	out := make([]*Region, len(s.regions))
	copy(out, s.regions)
	return out
}

// TotalAllocated returns the number of allocated bytes.
func (s *Space) TotalAllocated() uint64 {
	var total uint64
	for _, r := range s.regions {
		total += r.Size
	}
	return total
}
