package memspace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAllocAndLookup(t *testing.T) {
	s := New()
	a := s.Alloc("a", 100, KindDRAM)
	b := s.Alloc("b", 4096, KindNVM)
	if a.Size != 128 { // rounded to 64B
		t.Fatalf("size=%d, want 128", a.Size)
	}
	if a.Base == 0 {
		t.Fatal("base must not be the null page")
	}
	if b.Base != a.End() {
		t.Fatalf("regions must be contiguous: %#x vs %#x", b.Base, a.End())
	}
	if got := s.Region(a.Base + 5); got != a {
		t.Fatal("lookup inside a failed")
	}
	if got := s.Region(b.Base); got != b {
		t.Fatal("lookup at base of b failed")
	}
	if got := s.Region(0); got != nil {
		t.Fatal("null page must be unmapped")
	}
	if got := s.Region(b.End()); got != nil {
		t.Fatal("past-the-end must be unmapped")
	}
	if s.KindOf(b.Base+10) != KindNVM {
		t.Fatal("KindOf wrong")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := New()
	r := s.Alloc("buf", 256, KindDRAM)
	msg := []byte("hello rambda")
	s.Write(r.Base+32, msg)
	got := make([]byte, len(msg))
	s.Read(r.Base+32, got)
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip got %q", got)
	}
	// Slice aliases live storage.
	sl := s.Slice(r.Base+32, len(msg))
	sl[0] = 'H'
	s.Read(r.Base+32, got)
	if got[0] != 'H' {
		t.Fatal("Slice must alias backing storage")
	}
}

func TestAccessPanics(t *testing.T) {
	s := New()
	r := s.Alloc("x", 64, KindDRAM)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("unmapped read", func() { s.Read(0, make([]byte, 1)) })
	mustPanic("cross-end read", func() { s.Read(r.Base+60, make([]byte, 10)) })
	mustPanic("zero alloc", func() { s.Alloc("z", 0, KindDRAM) })
	mustPanic("KindOf unmapped", func() { s.KindOf(1) })
}

func TestRange(t *testing.T) {
	r := Range{Base: 100, Size: 50}
	if !r.Contains(100) || !r.Contains(149) || r.Contains(150) || r.Contains(99) {
		t.Fatal("Contains broken")
	}
	if !r.Overlaps(Range{Base: 140, Size: 20}) {
		t.Fatal("overlap missed")
	}
	if r.Overlaps(Range{Base: 150, Size: 20}) {
		t.Fatal("false overlap")
	}
	if r.Overlaps(Range{Base: 50, Size: 50}) {
		t.Fatal("false overlap before")
	}
}

func TestKindString(t *testing.T) {
	if KindDRAM.String() != "dram" || KindNVM.String() != "nvm" ||
		KindAccelLocal.String() != "accel-local" {
		t.Fatal("kind names")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still print")
	}
}

func TestPropertyRegionsDisjointAndFindable(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := New()
		var regs []*Region
		for i, sz := range sizes {
			if len(regs) > 64 {
				break
			}
			size := uint64(sz%4096) + 1
			regs = append(regs, s.Alloc("r", size, Kind(i%3)))
		}
		for i, r := range regs {
			// Every region must be findable at its base and last byte.
			if s.Region(r.Base) != r || s.Region(r.End()-1) != r {
				return false
			}
			// And disjoint from all others.
			for j, o := range regs {
				if i != j && r.Overlaps(o.Range) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTotalAllocated(t *testing.T) {
	s := New()
	s.Alloc("a", 64, KindDRAM)
	s.Alloc("b", 128, KindNVM)
	if s.TotalAllocated() != 192 {
		t.Fatalf("total=%d", s.TotalAllocated())
	}
	if len(s.Regions()) != 2 {
		t.Fatal("Regions() wrong length")
	}
}

func TestAllocPhantom(t *testing.T) {
	s := New()
	s.Alloc("pre", 64, KindNVM)
	ph := s.AllocPhantom("dma-buf", 1<<20, KindDRAM)
	post := s.Alloc("post", 64, KindDRAM)

	if !ph.Phantom() || ph.Bytes() != nil {
		t.Fatal("phantom region reports backing storage")
	}
	// Address-space behaviour is indistinguishable from a backed region:
	// kind steering and neighbour layout see the same map.
	if got := s.KindOf(ph.Base + 12345); got != KindDRAM {
		t.Fatalf("KindOf inside phantom = %v", got)
	}
	if s.Region(ph.End()-1) != ph {
		t.Fatal("Region lookup missed the phantom")
	}
	if post.Base != ph.End() {
		t.Fatalf("phantom did not reserve address space: post at %#x, want %#x", post.Base, ph.End())
	}
	// Byte access is a programming error, not a silent zero read.
	defer func() {
		if recover() == nil {
			t.Fatal("Slice into a phantom region did not panic")
		}
	}()
	s.Slice(ph.Base, 8)
}
