package cpoll

import (
	"testing"

	"rambda/internal/coherence"
	"rambda/internal/memspace"
	"rambda/internal/ringbuf"
	"rambda/internal/sim"
)

// fixture builds n contiguous request rings plus (optionally) a pointer
// buffer in a fresh space.
type fixture struct {
	space  *memspace.Space
	domain *coherence.Domain
	rings  []*ringbuf.Ring
	pb     *ringbuf.PointerBuffer
	fetch  FetchFunc
	fetsum int // bytes fetched, to observe polling traffic
}

func newFixture(t *testing.T, nrings, entries int, withPB bool) *fixture {
	t.Helper()
	f := &fixture{space: memspace.New(), domain: coherence.NewDomain()}
	const entrySize = 64
	all := f.space.Alloc("rings", uint64(nrings*entries*entrySize), memspace.KindDRAM)
	for i := 0; i < nrings; i++ {
		r := memspace.Range{
			Base: all.Base + memspace.Addr(i*entries*entrySize),
			Size: uint64(entries * entrySize),
		}
		f.rings = append(f.rings, ringbuf.NewRing(f.space, ringbuf.NewLayout(r, entries)))
	}
	if withPB {
		preg := f.space.Alloc("pb", uint64(nrings*ringbuf.PtrEntryBytes), memspace.KindDRAM)
		f.pb = ringbuf.NewPointerBuffer(f.space, preg.Range, nrings)
	}
	f.fetch = func(now sim.Time, _ memspace.Addr, bytes int) sim.Time {
		f.fetsum += bytes
		return now + 100*sim.Nanosecond
	}
	return f
}

// writeRequest simulates a producer writing message m to ring i (and
// bumping the pointer slot when pb is set), going through the coherence
// domain like a real DMA/store.
func (f *fixture) writeRequest(ringIdx int, seq *[]uint32, payload string) {
	r := f.rings[ringIdx]
	pos := int((*seq)[ringIdx]) % r.NumEntries
	entry := r.Encode([]byte(payload))
	f.space.Write(r.EntryAddr(pos), entry)
	f.domain.Write(coherence.AgentNIC, r.EntryAddr(pos), len(entry), 0)
	(*seq)[ringIdx]++
	if f.pb != nil {
		val := (*seq)[ringIdx]
		buf := f.space.Slice(f.pb.Addr(ringIdx), 4)
		buf[0], buf[1], buf[2], buf[3] = byte(val), byte(val>>8), byte(val>>16), byte(val>>24)
		f.domain.Write(coherence.AgentNIC, f.pb.Addr(ringIdx), 4, 0)
	}
}

func TestDirectModeSignalAndHarvest(t *testing.T) {
	f := newFixture(t, 2, 8, false)
	c := NewDirect(f.domain, coherence.AgentAccel, f.rings, 64<<10)
	seq := make([]uint32, 2)

	f.writeRequest(1, &seq, "req-a")
	if c.PendingRings() != 1 {
		t.Fatalf("pending=%d", c.PendingRings())
	}
	idx, ok := c.NextDirty()
	if !ok || idx != 1 {
		t.Fatalf("NextDirty=%d ok=%v, want ring 1", idx, ok)
	}
	n, at := c.Harvest(0, idx, f.fetch)
	if n != 1 {
		t.Fatalf("harvested=%d", n)
	}
	if at <= 0 {
		t.Fatal("harvest must charge fetches")
	}
	if _, ok := c.NextDirty(); ok {
		t.Fatal("queue must be empty after harvest")
	}
}

func TestDirectModeCoalescedSignalsYieldAllRequests(t *testing.T) {
	f := newFixture(t, 1, 8, false)
	c := NewDirect(f.domain, coherence.AgentAccel, f.rings, 64<<10)
	seq := make([]uint32, 1)
	// Three messages land before the accelerator harvests; signals to
	// already-invalid lines coalesce, but the tail tracking must find
	// all three.
	f.writeRequest(0, &seq, "m0")
	f.writeRequest(0, &seq, "m1")
	f.writeRequest(0, &seq, "m2")
	idx, ok := c.NextDirty()
	if !ok {
		t.Fatal("no dirty ring")
	}
	n, _ := c.Harvest(0, idx, f.fetch)
	if n != 3 {
		t.Fatalf("harvested=%d, want 3 despite coalescing", n)
	}
	if c.Harvested() != 3 {
		t.Fatalf("total harvested=%d", c.Harvested())
	}
}

func TestDirectModeReSignalsAfterHarvest(t *testing.T) {
	f := newFixture(t, 1, 8, false)
	c := NewDirect(f.domain, coherence.AgentAccel, f.rings, 64<<10)
	seq := make([]uint32, 1)
	f.writeRequest(0, &seq, "m0")
	idx, _ := c.NextDirty()
	c.Harvest(0, idx, f.fetch)
	before := c.Signals()
	f.writeRequest(0, &seq, "m1")
	if c.Signals() != before+1 {
		t.Fatal("write after harvest must signal again (lines reacquired)")
	}
	idx, ok := c.NextDirty()
	if !ok {
		t.Fatal("second message not queued")
	}
	if n, _ := c.Harvest(0, idx, f.fetch); n != 1 {
		t.Fatalf("harvested=%d", n)
	}
}

func TestDirectModeCacheCapacityEnforced(t *testing.T) {
	f := newFixture(t, 4, 8, false)
	defer func() {
		if recover() == nil {
			t.Fatal("region larger than local cache must panic (paper's scalability limit)")
		}
	}()
	NewDirect(f.domain, coherence.AgentAccel, f.rings, 512) // 4*8*64 = 2048 > 512
}

func TestDirectModeRequiresContiguousRings(t *testing.T) {
	f := newFixture(t, 1, 8, false)
	other := f.space.Alloc("gap", 64, memspace.KindDRAM)
	_ = other
	lone := f.space.Alloc("ring2", 512, memspace.KindDRAM)
	r2 := ringbuf.NewRing(f.space, ringbuf.NewLayout(lone.Range, 8))
	defer func() {
		if recover() == nil {
			t.Fatal("non-contiguous rings must panic in direct mode")
		}
	}()
	NewDirect(f.domain, coherence.AgentAccel, []*ringbuf.Ring{f.rings[0], r2}, 64<<10)
}

func TestPointerModeHarvestDelta(t *testing.T) {
	f := newFixture(t, 3, 8, true)
	c := NewPointer(f.domain, coherence.AgentAccel, f.pb, f.rings)
	if c.Mode() != PointerBuffer || c.Region() != f.pb.Range() {
		t.Fatal("checker must register the pointer buffer as the cpoll region")
	}
	seq := make([]uint32, 3)
	f.writeRequest(2, &seq, "a")
	f.writeRequest(2, &seq, "b")
	f.writeRequest(0, &seq, "c")

	harvests := 0
	for {
		idx, ok := c.NextDirty()
		if !ok {
			break
		}
		c.Harvest(0, idx, f.fetch)
		harvests++
	}
	// All three slots share one cacheline: the first harvest fetches the
	// line once and resolves every ring's delta; the remaining queue
	// entries are already clean.
	if harvests != 1 {
		t.Fatalf("harvests=%d, want 1 (one line fetch resolves the line)", harvests)
	}
	if c.Harvested() != 3 {
		t.Fatalf("harvested=%d, want all 3 requests", c.Harvested())
	}
	if f.fetsum != coherence.LineSize {
		t.Fatalf("fetched %d bytes, want one %d B line", f.fetsum, coherence.LineSize)
	}
}

func TestPointerModeCompactRegion(t *testing.T) {
	f := newFixture(t, 3, 8, true)
	c := NewPointer(f.domain, coherence.AgentAccel, f.pb, f.rings)
	// The pinned region is the pointer buffer: 3 slots of 4B -> one line.
	if c.Region().Size >= f.rings[0].Range.Size {
		t.Fatal("pointer-buffer region must be far smaller than the rings")
	}
	if f.domain.PinnedLines() != 1 {
		t.Fatalf("pinned lines=%d, want 1", f.domain.PinnedLines())
	}
}

func TestPointerModeSlotLimit(t *testing.T) {
	f := newFixture(t, 2, 8, false)
	preg := f.space.Alloc("pb", 4, memspace.KindDRAM)
	pb := ringbuf.NewPointerBuffer(f.space, memspace.Range{Base: preg.Base, Size: 4}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("more rings than slots must panic")
		}
	}()
	NewPointer(f.domain, coherence.AgentAccel, pb, f.rings)
}

func TestSchedulerFIFOFairness(t *testing.T) {
	// Direct mode: each ring occupies its own cachelines, so signal
	// order is the arrival order and the scheduler serves FIFO.
	f := newFixture(t, 4, 8, false)
	c := NewDirect(f.domain, coherence.AgentAccel, f.rings, 64<<10)
	seq := make([]uint32, 4)
	f.writeRequest(3, &seq, "x")
	f.writeRequest(1, &seq, "y")
	f.writeRequest(2, &seq, "z")
	var order []int
	for {
		idx, ok := c.NextDirty()
		if !ok {
			break
		}
		c.Harvest(0, idx, f.fetch)
		order = append(order, idx)
	}
	if len(order) != 3 || order[0] != 3 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("scheduler order=%v, want [3 1 2]", order)
	}
}

func TestPointerModeFalseSharingResolvedByDelta(t *testing.T) {
	// A write to one slot marks every ring sharing the line dirty;
	// zero-delta harvests keep correctness (no phantom requests).
	f := newFixture(t, 8, 8, true)
	c := NewPointer(f.domain, coherence.AgentAccel, f.pb, f.rings)
	seq := make([]uint32, 8)
	f.writeRequest(5, &seq, "only")
	for {
		idx, ok := c.NextDirty()
		if !ok {
			break
		}
		c.Harvest(0, idx, f.fetch)
	}
	if c.Harvested() != 1 {
		t.Fatalf("harvested=%d, want exactly 1 (no phantom requests)", c.Harvested())
	}
}

func TestSpinPollerFindsRequestsAndBurnsBandwidth(t *testing.T) {
	f := newFixture(t, 4, 8, false)
	p := NewSpinPoller(f.rings, 75*sim.Nanosecond)
	seq := make([]uint32, 4)

	pending, at := p.PollOnce(0, f.fetch)
	if len(pending) != 0 {
		t.Fatalf("idle poll found %v", pending)
	}
	if f.fetsum != 4*coherence.LineSize {
		t.Fatalf("idle poll fetched %d bytes — polling must burn bandwidth", f.fetsum)
	}
	if at <= 0 {
		t.Fatal("poll must take time")
	}

	f.writeRequest(2, &seq, "m")
	pending, _ = p.PollOnce(at, f.fetch)
	if len(pending) != 1 || pending[0] != 2 {
		t.Fatalf("pending=%v", pending)
	}
	// After consuming, the ring is reset and Advance moves the cursor.
	f.rings[2].ResetEntry(0)
	p.Advance(2, 1)
	pending, _ = p.PollOnce(at, f.fetch)
	if len(pending) != 0 {
		t.Fatalf("post-advance pending=%v", pending)
	}
	if p.Polls() != 12 {
		t.Fatalf("polls=%d, want 12", p.Polls())
	}
	if p.Interval() != 75*sim.Nanosecond {
		t.Fatal("interval accessor")
	}
}

func TestCpollIdleCostIsZero(t *testing.T) {
	// The headline property: with no traffic, cpoll fetches nothing
	// while a spin poller fetches continuously.
	f := newFixture(t, 8, 8, true)
	c := NewPointer(f.domain, coherence.AgentAccel, f.pb, f.rings)
	for i := 0; i < 100; i++ {
		if _, ok := c.NextDirty(); ok {
			t.Fatal("dirty ring with no traffic")
		}
	}
	if f.fetsum != 0 {
		t.Fatalf("cpoll fetched %d bytes while idle", f.fetsum)
	}
	if c.Signals() != 0 {
		t.Fatal("signals while idle")
	}
}

func TestModeString(t *testing.T) {
	if Direct.String() != "direct" || PointerBuffer.String() != "pointer-buffer" {
		t.Fatal("mode names")
	}
}
