// Package cpoll implements RAMBDA's coherence-assisted accelerator
// notification (paper Sec. III-B). A checker sits in the datapath of
// the cc-accelerator's coherence controller and snoops a single
// registered address region (the cpoll region). When a client's RDMA
// write or the CPU's coherent store hits the region, the resulting
// invalidation signal identifies which request ring received a message
// — with no polling traffic on the cc-interconnect.
//
// Two modes are provided, matching Fig. 3:
//
//   - Direct (Fig. 3b): the request rings themselves are the cpoll
//     region, pinned in the accelerator's local cache. Scales up to the
//     local cache size.
//   - PointerBuffer (Fig. 3c): a dense array of 4-byte per-ring
//     counters is the cpoll region; producers increment their slot
//     alongside each message. A 4-byte slot covers an arbitrarily large
//     ring, so the pinned footprint stays tiny.
//
// The package also provides SpinPoller, the conventional alternative
// used by the paper's "RAMBDA-polling" ablation, which burns cc-link
// bandwidth proportional to the polling rate.
package cpoll

import (
	"fmt"

	"rambda/internal/coherence"
	"rambda/internal/memspace"
	"rambda/internal/obs"
	"rambda/internal/ringbuf"
	"rambda/internal/sim"
)

// Mode selects the cpoll region layout.
type Mode int

const (
	// Direct pins the request rings themselves (Fig. 3b).
	Direct Mode = iota
	// PointerBuffer pins a compact per-ring counter array (Fig. 3c).
	PointerBuffer
)

// String names the mode.
func (m Mode) String() string {
	if m == Direct {
		return "direct"
	}
	return "pointer-buffer"
}

// FetchFunc charges the cost of the accelerator's coherence controller
// fetching `bytes` at addr (a cc-link crossing plus the backing device
// on a miss). It is supplied by the accelerator model so cpoll stays
// free of timing policy.
type FetchFunc func(now sim.Time, addr memspace.Addr, bytes int) sim.Time

// tracked is the checker's per-ring state.
type tracked struct {
	ring     *ringbuf.Ring
	ptrSlot  int
	seen     uint32 // messages harvested so far ("previous tail")
	dirty    bool
	inFlight bool // queued for the scheduler
}

// Checker is the cpoll checker.
type Checker struct {
	mode   Mode
	region memspace.Range
	domain *coherence.Domain
	agent  coherence.AgentID
	pb     *ringbuf.PointerBuffer

	bufs []*tracked

	// queue is a fixed-capacity FIFO ring of dirty ring indices for
	// the scheduler, sized to the connection count at construction.
	// The inFlight dedupe bounds live entries to len(bufs), so the
	// ring cannot overflow in correct operation; a full ring therefore
	// drops the signal (the delta-based Harvest still recovers the
	// messages on the next signal) and counts the drop.
	queue   []int32
	qhead   int
	qlen    int
	dropped int64

	signals   int64
	harvested int64

	// tr, when attached, records a StageNotify span per Harvest; nil
	// is the uninstrumented fast path.
	tr *obs.Trace
}

// NewDirect builds a checker whose cpoll region is the union span of
// the given request rings, which must be contiguous in memory (the
// framework allocates them that way, paper Sec. III-B). cacheBytes is
// the accelerator's local cache size; the region must fit or NewDirect
// panics — this is exactly the scalability limit that motivates the
// pointer buffer.
func NewDirect(domain *coherence.Domain, agent coherence.AgentID, rings []*ringbuf.Ring, cacheBytes int) *Checker {
	if len(rings) == 0 {
		panic("cpoll: no rings")
	}
	region := rings[0].Range
	for _, r := range rings[1:] {
		if r.Range.Base != region.End() {
			panic("cpoll: direct-mode rings must be contiguous")
		}
		region.Size += r.Range.Size
	}
	if region.Size > uint64(cacheBytes) {
		panic(fmt.Sprintf("cpoll: region %d B exceeds local cache %d B; use pointer-buffer mode",
			region.Size, cacheBytes))
	}
	c := &Checker{mode: Direct, region: region, domain: domain, agent: agent}
	for _, r := range rings {
		c.bufs = append(c.bufs, &tracked{ring: r})
	}
	c.queue = make([]int32, len(c.bufs))
	domain.Pin(agent, region)
	domain.SetSnooper(agent, c.onSignal)
	return c
}

// NewPointer builds a checker over a pointer buffer whose slot i
// corresponds to rings[i].
func NewPointer(domain *coherence.Domain, agent coherence.AgentID, pb *ringbuf.PointerBuffer, rings []*ringbuf.Ring) *Checker {
	if len(rings) > pb.Slots() {
		panic("cpoll: more rings than pointer-buffer slots")
	}
	c := &Checker{
		mode: PointerBuffer, region: pb.Range(), domain: domain, agent: agent, pb: pb,
	}
	for i, r := range rings {
		c.bufs = append(c.bufs, &tracked{ring: r, ptrSlot: i})
	}
	c.queue = make([]int32, len(c.bufs))
	domain.Pin(agent, pb.Range())
	domain.SetSnooper(agent, c.onSignal)
	return c
}

// SetTrace attaches (or with nil detaches) a span recorder; Harvest
// then records a StageNotify span covering signal resolution.
func (c *Checker) SetTrace(tr *obs.Trace) { c.tr = tr }

// RegisterMetrics registers the checker's series on reg under the
// given name prefix: signal-queue drops, pending rings, and totals.
func (c *Checker) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.Gauge(prefix+".signal_drops", func() float64 { return float64(c.dropped) })
	reg.Gauge(prefix+".pending_rings", func() float64 { return float64(c.PendingRings()) })
	reg.Gauge(prefix+".signals", func() float64 { return float64(c.signals) })
	reg.Gauge(prefix+".harvested", func() float64 { return float64(c.harvested) })
}

// Mode returns the checker's region layout.
func (c *Checker) Mode() Mode { return c.mode }

// Region returns the registered cpoll region.
func (c *Checker) Region() memspace.Range { return c.region }

// onSignal dispatches an invalidation to the rings it may belong to —
// the "trivially scalable" address-based dispatch of Sec. III-B.
// Invalidations arrive at cacheline granularity: in pointer-buffer mode
// several 4-byte slots share a line, and once the line is invalid,
// writes to *other* slots in it coalesce silently. The checker therefore
// marks every ring whose state lives in the invalidated lines as dirty;
// Harvest's previous-tail delta then resolves which rings actually
// received messages (zero-delta harvests are cheap 4-byte reads).
func (c *Checker) onSignal(sig coherence.Signal) {
	c.signals++
	span := memspace.Range{
		Base: sig.Addr &^ (coherence.LineSize - 1),
	}
	end := (sig.Addr + memspace.Addr(max(sig.Bytes, 1)) - 1) | (coherence.LineSize - 1)
	span.Size = uint64(end + 1 - span.Base)
	for idx := range c.bufs {
		if !c.stateRange(idx).Overlaps(span) {
			continue
		}
		b := c.bufs[idx]
		b.dirty = true
		if !b.inFlight {
			if c.qlen == len(c.queue) {
				// Cannot happen while inFlight dedupe holds (≤ one live
				// entry per ring), but a bounded structure never trusts
				// its invariant silently: drop and count. The ring stays
				// dirty, so the next signal re-queues it.
				c.dropped++
				continue
			}
			b.inFlight = true
			c.queue[(c.qhead+c.qlen)%len(c.queue)] = int32(idx)
			c.qlen++
		}
	}
}

// stateRange returns the memory the checker watches on behalf of ring
// idx: its pointer-buffer slot, or the ring itself in direct mode.
func (c *Checker) stateRange(idx int) memspace.Range {
	if c.mode == PointerBuffer {
		return memspace.Range{Base: c.pb.Addr(idx), Size: ringbuf.PtrEntryBytes}
	}
	return c.bufs[idx].ring.Range
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NextDirty pops the next signaled ring index in FIFO order for the
// scheduler. ok is false when no ring has pending signals.
func (c *Checker) NextDirty() (int, bool) {
	for c.qlen > 0 {
		idx := int(c.queue[c.qhead])
		c.qhead = (c.qhead + 1) % len(c.queue)
		c.qlen--
		b := c.bufs[idx]
		b.inFlight = false
		if b.dirty {
			return idx, true
		}
	}
	return 0, false
}

// Harvest determines how many new requests arrived on ring idx since
// the last harvest, charging controller fetches through fetch, and
// reacquires the invalidated lines so the next write signals again.
// Coalesced signals are handled by the previous-tail tracking the paper
// describes: one signal may yield several requests, several signals to
// an unharvested ring yield their union exactly once.
func (c *Checker) Harvest(now sim.Time, idx int, fetch FetchFunc) (int, sim.Time) {
	var sp obs.SpanID
	if c.tr != nil {
		sp = c.tr.Push("harvest", obs.StageNotify, now)
	}
	b := c.bufs[idx]
	b.dirty = false
	at := now
	var fresh int
	switch c.mode {
	case PointerBuffer:
		// One cacheline fetch brings every slot sharing the line, so
		// all dirty same-line rings are resolved with a single
		// controller read — this is what keeps pointer-buffer cpoll
		// cheap despite 4-byte slots packing 16 to a line.
		lineAddr := c.pb.Addr(b.ptrSlot) &^ (coherence.LineSize - 1)
		at = fetch(at, lineAddr, coherence.LineSize)
		for _, ob := range c.bufs {
			sameLine := c.pb.Addr(ob.ptrSlot)&^(coherence.LineSize-1) == lineAddr
			if !sameLine || (!ob.dirty && ob != b) {
				continue
			}
			ob.dirty = false
			val := c.pb.Read(ob.ptrSlot)
			delta := int(val - ob.seen)
			ob.seen = val
			if ob == b {
				fresh = delta
			} else {
				c.harvested += int64(delta)
			}
		}
		c.domain.Reacquire(c.agent, lineAddr, coherence.LineSize)
	default:
		// Scan forward from the previous tail while entries are valid.
		for {
			pos := int(b.seen) % b.ring.NumEntries
			addr := b.ring.EntryAddr(pos)
			at = fetch(at, addr, coherence.LineSize)
			c.domain.Reacquire(c.agent, addr, b.ring.EntrySize)
			if !b.ring.EntryValid(pos) {
				break
			}
			fresh++
			b.seen++
			if fresh == b.ring.NumEntries {
				break
			}
		}
	}
	c.harvested += int64(fresh)
	if c.tr != nil {
		c.tr.Pop(sp, at)
	}
	return fresh, at
}

// Signals reports invalidations observed by the checker.
func (c *Checker) Signals() int64 { return c.signals }

// SignalDrops reports signals discarded because the fixed-capacity
// scheduler queue was full (zero in correct operation; the counter
// exists so a broken invariant is visible, not silent).
func (c *Checker) SignalDrops() int64 { return c.dropped }

// Harvested reports total requests discovered.
func (c *Checker) Harvested() int64 { return c.harvested }

// PendingRings reports how many rings currently have unharvested
// signals.
func (c *Checker) PendingRings() int {
	n := 0
	for _, b := range c.bufs {
		if b.dirty {
			n++
		}
	}
	return n
}

// SpinPoller models the conventional notification path the paper
// ablates against ("RAMBDA-polling"): the accelerator repeatedly reads
// every ring head over the cc-interconnect at a fixed interval (30 FPGA
// cycles in the paper's experiment), consuming link bandwidth whether
// or not requests are present and adding up to one interval of
// discovery latency.
type SpinPoller struct {
	rings    []*ringbuf.Ring
	interval sim.Duration
	seen     []uint32

	polls int64
}

// NewSpinPoller builds a poller over the given rings.
func NewSpinPoller(rings []*ringbuf.Ring, interval sim.Duration) *SpinPoller {
	return &SpinPoller{rings: rings, interval: interval, seen: make([]uint32, len(rings))}
}

// Interval returns the polling period.
func (p *SpinPoller) Interval() sim.Duration { return p.interval }

// Polls reports the number of ring-head reads issued.
func (p *SpinPoller) Polls() int64 { return p.polls }

// PollOnce sweeps all rings once at `now`, charging one line fetch per
// ring through fetch, and returns the indices of rings with pending
// requests plus the sweep completion time. Discovery latency relative
// to cpoll is the caller-visible effect: a message that landed just
// after the previous sweep waits a full interval.
func (p *SpinPoller) PollOnce(now sim.Time, fetch FetchFunc) ([]int, sim.Time) {
	at := now
	var pending []int
	for i, r := range p.rings {
		pos := int(p.seen[i]) % r.NumEntries
		at = fetch(at, r.EntryAddr(pos), coherence.LineSize)
		p.polls++
		if r.EntryValid(pos) {
			pending = append(pending, i)
		}
	}
	return pending, at
}

// Advance records that `n` requests from ring i were consumed.
func (p *SpinPoller) Advance(i, n int) { p.seen[i] += uint32(n) }
